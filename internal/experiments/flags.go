package experiments

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
	"repro/internal/traffic"
)

// ScaleFlags registers the standard simulation-scale flag set — phase
// lengths, seed, and the parallelism/reference-path switches — on fs with
// the given defaults, and returns a function that resolves the final
// SimScale after fs.Parse. Every command-line tool (and the sweep service)
// shares this one definition, so the scale surface cannot drift between
// entry points; tools with extra conventions (-quick presets, auto
// sharding) adjust the returned value.
func ScaleFlags(fs *flag.FlagSet, def SimScale) func() SimScale {
	warmup := fs.Int("warmup", def.Warmup, "warmup cycles")
	measure := fs.Int("measure", def.Measure, "measurement cycles")
	drain := fs.Int("drain", def.Drain, "drain cycle budget")
	seed := fs.Uint64("seed", def.Seed, "simulation seed")
	workers := fs.Int("workers", def.Workers, "concurrent simulations per curve")
	shards := fs.Int("shards", def.Shards, "parallel shards within each simulation (results are bit-identical for any value)")
	dense := fs.Bool("dense", def.Dense, "step every router every cycle (reference scheduler; slower, bit-identical)")
	denseRequests := fs.Bool("denserequests", def.DenseRequests, "rebuild every VA/switch request every cycle (reference request path; slower, bit-identical)")
	leap := fs.Bool("leap", def.Leap, "leap over provably idle cycles (-leap=false keeps the per-cycle slow twin; results are bit-identical either way)")
	return func() SimScale {
		return SimScale{
			Warmup:        *warmup,
			Measure:       *measure,
			Drain:         *drain,
			Seed:          *seed,
			Workers:       *workers,
			Shards:        *shards,
			Dense:         *dense,
			DenseRequests: *denseRequests,
			Leap:          *leap,
			Workload:      def.Workload,
		}
	}
}

// WorkloadFlags registers the standard injection-workload flag set —
// arrival process, traffic pattern, and their parameters — on fs with the
// given defaults, and returns a function that resolves the final
// traffic.Workload after fs.Parse (loading the -trace file when one is
// named). It mirrors ScaleFlags: every command-line tool shares this one
// definition, so the workload surface cannot drift between entry points.
func WorkloadFlags(fs *flag.FlagSet, def traffic.Workload) func() (traffic.Workload, error) {
	def = def.Normalized()
	process := fs.String("process", def.Process, "arrival process: bernoulli, mmp (bursty on/off), or trace (replay -trace)")
	pattern := fs.String("pattern", def.Pattern, "traffic pattern: uniform, transpose, bitcomp, bitrev, shuffle, tornado, neighbor, hotspot")
	rate := fs.Float64("rate", def.Rate, "offered load in flits/cycle/terminal (tools that sweep the x-axis ignore it)")
	burstLen := fs.Float64("burstlen", def.BurstLen, "mmp mean ON-burst length in cycles (0 = default 32)")
	duty := fs.Float64("duty", def.Duty, "mmp long-run ON fraction in (0, 1] (0 = default 0.25)")
	hotspots := fs.String("hotspots", intsCSV(def.Hotspots), "hotspot pattern: comma-separated hot terminal ids (empty = terminal 0)")
	hotFrac := fs.Float64("hotfrac", def.HotspotFraction, "hotspot pattern: traffic share sent to the hot set (0 = default 0.2)")
	tracePath := fs.String("trace", "", "packet-trace file to replay (selects the trace process unless -process says otherwise)")
	return func() (traffic.Workload, error) {
		w := traffic.Workload{
			Process:         *process,
			Rate:            *rate,
			Pattern:         *pattern,
			BurstLen:        *burstLen,
			Duty:            *duty,
			HotspotFraction: *hotFrac,
		}
		// The explicit trace flag overrides a defaulted process name, so
		// "-trace t.txt" alone selects replay.
		if *tracePath != "" && w.Process == "bernoulli" && def.Process == "bernoulli" {
			w.Process = ""
		}
		hs, err := parseIntsCSV(*hotspots)
		if err != nil {
			return traffic.Workload{}, fmt.Errorf("-hotspots: %w", err)
		}
		w.Hotspots = hs
		if *tracePath != "" {
			f, err := os.Open(*tracePath)
			if err != nil {
				return traffic.Workload{}, err
			}
			defer f.Close()
			pt, err := trace.ReadArrivals(f)
			if err != nil {
				return traffic.Workload{}, fmt.Errorf("%s: %w", *tracePath, err)
			}
			w.Trace = pt
		}
		w = w.Normalized()
		if w.Process == "trace" && w.Trace == nil {
			return traffic.Workload{}, fmt.Errorf("-process trace needs -trace <file>")
		}
		return w, nil
	}
}

// intsCSV renders an int slice as the comma-separated flag default.
func intsCSV(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// parseIntsCSV parses a comma-separated int list ("" = nil).
func parseIntsCSV(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
