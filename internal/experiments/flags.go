package experiments

import "flag"

// ScaleFlags registers the standard simulation-scale flag set — phase
// lengths, seed, and the parallelism/reference-path switches — on fs with
// the given defaults, and returns a function that resolves the final
// SimScale after fs.Parse. Every command-line tool (and the sweep service)
// shares this one definition, so the scale surface cannot drift between
// entry points; tools with extra conventions (-quick presets, auto
// sharding) adjust the returned value.
func ScaleFlags(fs *flag.FlagSet, def SimScale) func() SimScale {
	warmup := fs.Int("warmup", def.Warmup, "warmup cycles")
	measure := fs.Int("measure", def.Measure, "measurement cycles")
	drain := fs.Int("drain", def.Drain, "drain cycle budget")
	seed := fs.Uint64("seed", def.Seed, "simulation seed")
	workers := fs.Int("workers", def.Workers, "concurrent simulations per curve")
	shards := fs.Int("shards", def.Shards, "parallel shards within each simulation (results are bit-identical for any value)")
	dense := fs.Bool("dense", def.Dense, "step every router every cycle (reference scheduler; slower, bit-identical)")
	denseRequests := fs.Bool("denserequests", def.DenseRequests, "rebuild every VA/switch request every cycle (reference request path; slower, bit-identical)")
	leap := fs.Bool("leap", def.Leap, "leap over provably idle cycles (-leap=false keeps the per-cycle slow twin; results are bit-identical either way)")
	return func() SimScale {
		return SimScale{
			Warmup:        *warmup,
			Measure:       *measure,
			Drain:         *drain,
			Seed:          *seed,
			Workers:       *workers,
			Shards:        *shards,
			Dense:         *dense,
			DenseRequests: *denseRequests,
			Leap:          *leap,
		}
	}
}
