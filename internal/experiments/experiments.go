// Package experiments defines one regenerator per table/figure of Becker &
// Dally (SC '09) so that the command-line tools and the benchmark harness
// share a single source of truth for workloads, parameters and design
// points. The per-experiment index in DESIGN.md maps onto this package.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/alloc"
	"repro/internal/arbiter"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/quality"
	"repro/internal/routing"
	"repro/internal/sharecache"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Point is one of the paper's six design points (§3): a topology plus a VC
// organization.
type Point struct {
	// Topo is "mesh" (8×8, P=5) or "fbfly" (4×4 c=4, P=10).
	Topo string
	// Ports is the router radix.
	Ports int
	// Spec is the M×R×C VC organization.
	Spec core.VCSpec
}

// String renders the paper's subfigure label, e.g. "mesh 2x1x4".
func (p Point) String() string { return fmt.Sprintf("%s %s", p.Topo, p.Spec) }

// Points returns the six design points in the paper's figure order
// (mesh 2×1×{1,2,4}, fbfly 2×2×{1,2,4}).
func Points() []Point {
	return []Point{
		{Topo: "mesh", Ports: 5, Spec: core.NewVCSpec(2, 1, 1)},
		{Topo: "mesh", Ports: 5, Spec: core.NewVCSpec(2, 1, 2)},
		{Topo: "mesh", Ports: 5, Spec: core.NewVCSpec(2, 1, 4)},
		{Topo: "fbfly", Ports: 10, Spec: core.NewVCSpec(2, 2, 1)},
		{Topo: "fbfly", Ports: 10, Spec: core.NewVCSpec(2, 2, 2)},
		{Topo: "fbfly", Ports: 10, Spec: core.NewVCSpec(2, 2, 4)},
	}
}

// PointsFor returns the design points of one topology in VC order (the
// design-space search enumerates VC organizations per topology).
func PointsFor(topo string) []Point {
	var pts []Point
	for _, p := range Points() {
		if p.Topo == topo {
			pts = append(pts, p)
		}
	}
	return pts
}

// PointByName returns the design point labeled "<topo> MxRxC".
func PointByName(topo string, c int) (Point, error) {
	for _, p := range Points() {
		if p.Topo == topo && p.Spec.VCsPerClass == c {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("experiments: no design point %s C=%d", topo, c)
}

// Variant is one allocator implementation from the figure legends.
type Variant struct {
	// Arch is the allocator architecture.
	Arch alloc.Arch
	// Arb is the arbiter kind ("m" or "rr"); wavefront always uses "rr".
	Arb arbiter.Kind
}

// String renders the legend label, e.g. "sep_if/m" or "wf/rr".
func (v Variant) String() string { return v.Arch.String() + "/" + v.Arb.String() }

// Variants returns the five legend entries of Figs. 5, 6, 10 and 11:
// sep_if/m, sep_if/rr, sep_of/m, sep_of/rr, wf/rr.
func Variants() []Variant {
	return []Variant{
		{alloc.SepIF, arbiter.Matrix},
		{alloc.SepIF, arbiter.RoundRobin},
		{alloc.SepOF, arbiter.Matrix},
		{alloc.SepOF, arbiter.RoundRobin},
		{alloc.Wavefront, arbiter.RoundRobin},
	}
}

// --- Figs. 5 & 6: VC allocator implementation cost ---------------------------

// VCCostRow is one synthesis result for the VC allocator cost figures.
type VCCostRow struct {
	Point   Point
	Variant Variant
	// Sparse distinguishes the two connected data points per curve
	// (§4.3.1): the design before and after sparse VC allocation.
	Sparse bool
	Est    costmodel.Estimate
}

// VCCost regenerates the data behind Figs. 5 (area vs delay) and 6 (power
// vs delay): every design point × variant × {dense, sparse}.
func VCCost(tech costmodel.Tech) []VCCostRow {
	var rows []VCCostRow
	for _, pt := range Points() {
		for _, v := range Variants() {
			for _, sparse := range []bool{false, true} {
				est := costmodel.VCAllocCost(tech, core.VCAllocConfig{
					Ports: pt.Ports, Spec: pt.Spec, Arch: v.Arch, ArbKind: v.Arb, Sparse: sparse,
				})
				rows = append(rows, VCCostRow{Point: pt, Variant: v, Sparse: sparse, Est: est})
			}
		}
	}
	return rows
}

// SparseSavings summarizes the §4.3.1 headline: the maximum relative delay,
// area and power reduction from sparse VC allocation over all design points
// whose dense and sparse variants both synthesized (paper: up to 41%, 90%
// and 83%).
func SparseSavings(tech costmodel.Tech) (delay, area, power float64) {
	rows := VCCost(tech)
	byKey := map[string][2]costmodel.Estimate{}
	for _, r := range rows {
		key := r.Point.String() + r.Variant.String()
		pair := byKey[key]
		if r.Sparse {
			pair[1] = r.Est
		} else {
			pair[0] = r.Est
		}
		byKey[key] = pair
	}
	for _, pair := range byKey {
		dense, sparse := pair[0], pair[1]
		if !dense.Synthesized || !sparse.Synthesized {
			continue
		}
		if s := 1 - sparse.DelayNS/dense.DelayNS; s > delay {
			delay = s
		}
		if s := 1 - sparse.AreaUM2/dense.AreaUM2; s > area {
			area = s
		}
		if s := 1 - sparse.PowerMW/dense.PowerMW; s > power {
			power = s
		}
	}
	return delay, area, power
}

// --- Figs. 10 & 11: switch allocator implementation cost ---------------------

// SwitchCostRow is one synthesis result for the switch allocator cost
// figures; the three Modes per curve are the paper's three data points
// (non-speculative, pessimistic, conventional).
type SwitchCostRow struct {
	Point   Point
	Variant Variant
	Mode    core.SpecMode
	Est     costmodel.Estimate
}

// SwitchCost regenerates the data behind Figs. 10 and 11.
func SwitchCost(tech costmodel.Tech) []SwitchCostRow {
	var rows []SwitchCostRow
	for _, pt := range Points() {
		for _, v := range Variants() {
			for _, mode := range []core.SpecMode{core.SpecNone, core.SpecReq, core.SpecGnt} {
				est := costmodel.SwitchAllocCost(tech, core.SwitchAllocConfig{
					Ports: pt.Ports, VCs: pt.Spec.V(), Arch: v.Arch, ArbKind: v.Arb, SpecMode: mode,
				})
				rows = append(rows, SwitchCostRow{Point: pt, Variant: v, Mode: mode, Est: est})
			}
		}
	}
	return rows
}

// PessimisticDelaySaving summarizes the §5.3.1 headline: the maximum
// relative delay reduction of the pessimistic speculation scheme over the
// conventional one (paper: up to 23%, most pronounced for the wavefront
// allocator — in this model the low-delay sep_if/m points land within a
// couple of percent of the wavefront maximum).
func PessimisticDelaySaving(tech costmodel.Tech) (best float64, bestRow string) {
	rows := SwitchCost(tech)
	type key struct {
		pt, v string
	}
	byKey := map[key]map[core.SpecMode]costmodel.Estimate{}
	for _, r := range rows {
		k := key{r.Point.String(), r.Variant.String()}
		if byKey[k] == nil {
			byKey[k] = map[core.SpecMode]costmodel.Estimate{}
		}
		byKey[k][r.Mode] = r.Est
	}
	for k, m := range byKey {
		pr, cg := m[core.SpecReq], m[core.SpecGnt]
		if !pr.Synthesized || !cg.Synthesized {
			continue
		}
		if s := 1 - pr.DelayNS/cg.DelayNS; s > best {
			best = s
			bestRow = k.pt + " " + k.v
		}
	}
	return best, bestRow
}

// --- Figs. 7 & 12: matching quality -------------------------------------------

// VCQuality regenerates one subfigure of Fig. 7: the three architecture
// curves (sep_if, sep_of, wf; round-robin arbiters) for a design point.
// Rate points are swept with one worker per CPU; see VCQualityN.
func VCQuality(pt Point, rates []float64, trials int, seed uint64) []quality.Series {
	return VCQualityN(pt, rates, trials, seed, runtime.NumCPU())
}

// VCQualityN is VCQuality with an explicit bound on concurrently swept rate
// points. Results are bit-identical for any worker count.
func VCQualityN(pt Point, rates []float64, trials int, seed uint64, workers int) []quality.Series {
	var cfgs []core.VCAllocConfig
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		cfgs = append(cfgs, core.VCAllocConfig{
			Ports: pt.Ports, Spec: pt.Spec, Arch: arch, ArbKind: arbiter.RoundRobin,
		})
	}
	return quality.VCSeriesMulti(cfgs, rates, trials, seed, workers)
}

// SwitchQuality regenerates one subfigure of Fig. 12. Rate points are swept
// with one worker per CPU; see SwitchQualityN.
func SwitchQuality(pt Point, rates []float64, trials int, seed uint64) []quality.Series {
	return SwitchQualityN(pt, rates, trials, seed, runtime.NumCPU())
}

// SwitchQualityN is SwitchQuality with an explicit bound on concurrently
// swept rate points. Results are bit-identical for any worker count.
func SwitchQualityN(pt Point, rates []float64, trials int, seed uint64, workers int) []quality.Series {
	var cfgs []core.SwitchAllocConfig
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		cfgs = append(cfgs, core.SwitchAllocConfig{
			Ports: pt.Ports, VCs: pt.Spec.V(), Arch: arch, ArbKind: arbiter.RoundRobin,
		})
	}
	return quality.SwitchSeriesMulti(cfgs, rates, trials, seed, workers)
}

// --- Figs. 13 & 14: network-level performance ---------------------------------

// SimScale controls simulation length; the default regenerates
// publication-quality curves, tests use shorter phases.
type SimScale struct {
	Warmup, Measure, Drain int
	Seed                   uint64
	// Workers bounds the number of simulations run concurrently when a
	// curve's rate points are swept (each point is an independent,
	// deterministic simulation). Zero or one means serial execution.
	Workers int
	// Shards splits each individual simulation into this many concurrently
	// stepped router groups (sim.Config.Shards); results are bit-identical
	// for any value. Zero keeps single-threaded stepping, except in
	// PatternSweep, which auto-shards when run-level parallelism alone
	// cannot fill the machine.
	Shards int
	// Dense disables the simulator's active-set scheduling and steps every
	// router and terminal every cycle; results are bit-identical either way
	// (golden tests rely on this), the dense stepper is just slower.
	Dense bool
	// DenseRequests disables the routers' change-driven request caching and
	// rebuilds every VA/switch request from scratch each cycle
	// (sim.Config.DenseRequests); an independent axis from Dense, likewise
	// bit-identical and slower, kept as the golden reference path.
	DenseRequests bool
	// Leap enables the simulator's event-leaping fast path
	// (sim.Config.Leap): provably idle stretches are jumped instead of
	// ticked. Bit-identical either way; DefaultScale turns it on.
	Leap bool
	// Workload selects the injection workload (arrival process, traffic
	// pattern, parameters) applied to every simulation built through
	// BuildSim. Unlike the execution fields above it is semantic — it
	// changes results — and its zero value is the paper default (Bernoulli
	// over uniform). The offered rate stays per-point: BuildSim overwrites
	// Workload.Rate with its rate argument.
	Workload traffic.Workload
}

// DefaultScale is sized for the cmd-line tools.
func DefaultScale() SimScale {
	return SimScale{Warmup: 3000, Measure: 6000, Drain: 20000, Seed: 42, Leap: true}
}

// NetPoint is one latency/throughput sample.
type NetPoint struct {
	Rate       float64
	Latency    float64
	Throughput float64
	Saturated  bool
	// Cycles is the simulated cycle count behind the sample; benchmarks
	// divide it by wall-clock time for a cycles/sec throughput metric.
	Cycles int64
}

// NetSeries is a named latency-vs-injection-rate curve.
type NetSeries struct {
	Name   string
	Points []NetPoint
}

// SaturationRate estimates the series' saturation throughput: the highest
// observed accepted rate.
func (s NetSeries) SaturationRate() float64 {
	best := 0.0
	for _, p := range s.Points {
		if p.Throughput > best {
			best = p.Throughput
		}
	}
	return best
}

// InjectionRates returns the paper's x-axis sweep for a design point
// (Figs. 13 and 14 use wider ranges for the flattened butterfly and for
// more VCs).
func InjectionRates(pt Point) []float64 {
	var max float64
	switch {
	case pt.Topo == "mesh" && pt.Spec.VCsPerClass == 1:
		max = 0.35
	case pt.Topo == "mesh" && pt.Spec.VCsPerClass == 2:
		max = 0.40
	case pt.Topo == "mesh":
		max = 0.45
	case pt.Spec.VCsPerClass == 1:
		max = 0.50
	case pt.Spec.VCsPerClass == 2:
		max = 0.60
	default:
		max = 0.70
	}
	var rates []float64
	for r := 0.05; r <= max+1e-9; r += 0.05 {
		rates = append(rates, r)
	}
	return rates
}

// BuildSim assembles a simulation config for a design point. The VC
// allocator defaults to separable input-first and speculation to the
// pessimistic scheme, the baseline the paper's §5.3.3 simulations use.
func BuildSim(pt Point, rate float64, scale SimScale) sim.Config {
	w := scale.Workload
	if w.Process != "trace" {
		w.Rate = rate
	}
	cfg := sim.Config{
		Spec:          pt.Spec,
		VA:            core.VCAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin},
		SA:            core.SwitchAllocConfig{Arch: alloc.SepIF, ArbKind: arbiter.RoundRobin, SpecMode: core.SpecReq},
		Workload:      w,
		InjectionRate: rate,
		Seed:          scale.Seed,
		Warmup:        scale.Warmup,
		Measure:       scale.Measure,
		Drain:         scale.Drain,
		Shards:        scale.Shards,
		Dense:         scale.Dense,
		DenseRequests: scale.DenseRequests,
		Leap:          scale.Leap,
	}
	cfg.Topology, cfg.Routing = sharedNet(pt.Topo)
	return cfg
}

// builtNet pairs a topology with its routing function; both are immutable
// after construction (the topology is never written post-build and the
// routing functions hold no mutable fields — all per-packet state lives in
// routing.PacketRoute), so one instance is safely shared by every
// concurrently running simulation of the design point.
type builtNet struct {
	topo *topology.Topology
	rt   routing.Function
}

// sharedNet returns the (topology, routing) pair for a topology name
// through the share cache: built once per process while sharing is enabled,
// built fresh per call (the pre-sharing cold path) when it is disabled.
func sharedNet(topo string) (*topology.Topology, routing.Function) {
	var build func() builtNet
	switch topo {
	case "mesh":
		build = func() builtNet {
			t := topology.Mesh(8)
			return builtNet{t, routing.NewDOR(t)}
		}
	case "fbfly":
		build = func() builtNet {
			t := topology.FlattenedButterfly(4, 4)
			return builtNet{t, routing.NewUGAL(t, 1)}
		}
	default:
		panic("experiments: unknown topology " + topo)
	}
	n := sharecache.Get(sharecache.Default, "net/"+topo, build)
	return n.topo, n.rt
}

func runCurve(ctx context.Context, name string, rates []float64, mk func(rate float64) sim.Config) NetSeries {
	return runCurveN(ctx, name, rates, 1, mk)
}

// runCurveN sweeps the rate points with up to `workers` simulations in
// flight. Every point is an independent simulation with its own seed, so
// results are bit-identical regardless of parallelism. Cancelling ctx
// aborts in-flight simulations (sim.RunCtx polls it every
// sim.AbortCheckInterval cycles) and skips unstarted points; aborted points
// are left zero-valued, so callers that care must check ctx.Err().
func runCurveN(ctx context.Context, name string, rates []float64, workers int, mk func(rate float64) sim.Config) NetSeries {
	s := NetSeries{Name: name, Points: make([]NetPoint, len(rates))}
	if workers < 1 {
		workers = 1
	}
	if workers > len(rates) {
		workers = len(rates)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, rate := range rates {
		i, rate := i, rate
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			res := sim.New(mk(rate)).RunCtx(ctx)
			if res.Aborted {
				return
			}
			s.Points[i] = NetPoint{
				Rate: rate, Latency: res.AvgLatency, Throughput: res.Throughput,
				Saturated: res.Saturated, Cycles: res.Cycles,
			}
		}()
	}
	wg.Wait()
	return s
}

// Fig13 regenerates one subfigure of Fig. 13: average packet latency vs
// injection rate for the three switch allocator architectures (separable
// input-first VC allocation and pessimistic speculation, per §5.3.3).
func Fig13(pt Point, rates []float64, scale SimScale) []NetSeries {
	return Fig13Ctx(context.Background(), pt, rates, scale)
}

// Fig13Ctx is Fig13 with cooperative cancellation: cancelling ctx aborts
// in-flight simulations and skips unstarted rate points.
func Fig13Ctx(ctx context.Context, pt Point, rates []float64, scale SimScale) []NetSeries {
	var out []NetSeries
	for _, arch := range []alloc.Arch{alloc.SepIF, alloc.SepOF, alloc.Wavefront} {
		arch := arch
		out = append(out, runCurveN(ctx, arch.String(), rates, scale.Workers, func(rate float64) sim.Config {
			cfg := BuildSim(pt, rate, scale)
			cfg.SA.Arch = arch
			return cfg
		}))
	}
	return out
}

// Fig14 regenerates one subfigure of Fig. 14: the three speculation schemes
// on a separable input-first switch allocator.
func Fig14(pt Point, rates []float64, scale SimScale) []NetSeries {
	return Fig14Ctx(context.Background(), pt, rates, scale)
}

// Fig14Ctx is Fig14 with cooperative cancellation.
func Fig14Ctx(ctx context.Context, pt Point, rates []float64, scale SimScale) []NetSeries {
	var out []NetSeries
	for _, mode := range []core.SpecMode{core.SpecNone, core.SpecGnt, core.SpecReq} {
		mode := mode
		out = append(out, runCurveN(ctx, mode.String(), rates, scale.Workers, func(rate float64) sim.Config {
			cfg := BuildSim(pt, rate, scale)
			cfg.SA.SpecMode = mode
			return cfg
		}))
	}
	return out
}

// VASweep regenerates the §4.3.3 experiment the paper describes but omits
// for space: latency curves for different VC allocator architectures,
// demonstrating the network's insensitivity to the choice.
func VASweep(pt Point, rates []float64, scale SimScale) []NetSeries {
	type va struct {
		arch   alloc.Arch
		sparse bool
		name   string
	}
	vas := []va{
		{alloc.SepIF, false, "va=sep_if"},
		{alloc.SepOF, false, "va=sep_of"},
		{alloc.Wavefront, false, "va=wf"},
		{alloc.SepIF, true, "va=sep_if(sparse)"},
	}
	var out []NetSeries
	for _, v := range vas {
		v := v
		out = append(out, runCurveN(context.Background(), v.name, rates, scale.Workers, func(rate float64) sim.Config {
			cfg := BuildSim(pt, rate, scale)
			cfg.VA.Arch = v.arch
			cfg.VA.Sparse = v.sparse
			return cfg
		}))
	}
	return out
}

// FormatNetSeries renders latency curves as a tab-separated table. Rows are
// the union of every rate any series sampled, in ascending order, so
// non-uniform grids — adaptive traces, or series sampled at different rates
// — align by rate instead of by position; a series without a sample at some
// rate renders "-" cells.
func FormatNetSeries(series []NetSeries) string {
	if len(series) == 0 {
		return ""
	}
	var rates []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.Rate] {
				seen[p.Rate] = true
				rates = append(rates, p.Rate)
			}
		}
	}
	sort.Float64s(rates)
	// Rates are keyed by their exact float64 value: every sampled rate comes
	// from one canonical computation (a shared grid slice or RateLattice.Rate),
	// so equal offered loads are bit-equal and distinct ones never collide.
	byRate := make([]map[float64]NetPoint, len(series))
	for si, s := range series {
		byRate[si] = make(map[float64]NetPoint, len(s.Points))
		for _, p := range s.Points {
			byRate[si][p.Rate] = p
		}
	}
	// Two decimals cover the paper's 0.05 grid; finer lattices widen the
	// rate column until every sampled rate is distinguishable.
	prec := 2
	for _, r := range rates {
		for prec < 6 && math.Abs(r-math.Round(r*math.Pow(10, float64(prec)))/math.Pow(10, float64(prec))) > 1e-9 {
			prec++
		}
	}
	out := "rate"
	for _, s := range series {
		out += fmt.Sprintf("\t%s(lat)\t%s(thr)", s.Name, s.Name)
	}
	out += "\n"
	for _, r := range rates {
		out += fmt.Sprintf("%.*f", prec, r)
		for si := range series {
			sp, ok := byRate[si][r]
			if !ok {
				out += "\t-\t-"
				continue
			}
			sat := ""
			if sp.Saturated {
				sat = "*"
			}
			out += fmt.Sprintf("\t%.1f%s\t%.3f", sp.Latency, sat, sp.Throughput)
		}
		out += "\n"
	}
	return out
}

// SaturationThroughput estimates the saturation throughput of a design
// point under a given switch allocator architecture by sweeping the offered
// load and taking the highest accepted rate (paper conclusions: wf beats
// sep_if by 15% / 21% on the fbfly with 8 / 16 VCs).
func SaturationThroughput(pt Point, swArch alloc.Arch, scale SimScale) float64 {
	offered := InjectionRates(pt)
	accepted := make([]float64, len(offered))
	for i, rate := range offered {
		cfg := BuildSim(pt, rate, scale)
		cfg.SA.Arch = swArch
		res := sim.New(cfg).Run()
		accepted[i] = res.Throughput
		// Once two consecutive points stop tracking offered load the
		// plateau is established; stop early to bound runtime.
		if i >= 1 && accepted[i] < offered[i]*0.9 && accepted[i-1] < offered[i-1]*0.95 {
			accepted = accepted[:i+1]
			offered = offered[:i+1]
			break
		}
	}
	best, _ := stats.SaturationEstimate(offered, accepted, 0.05)
	return best
}

// WorkloadName renders the series label for a workload: the arrival process
// plus the traffic pattern, with parameters where they disambiguate
// ("mmp(b32,d0.25)/uniform", "bernoulli/hotspot", "trace").
func WorkloadName(w traffic.Workload) string {
	w = w.Normalized()
	proc := w.Process
	if proc == "mmp" {
		proc = fmt.Sprintf("mmp(b%g,d%g)", w.BurstLen, w.Duty)
	}
	if proc == "trace" {
		return proc
	}
	pat := w.Pattern
	if pat == "hotspot" {
		pat = fmt.Sprintf("hotspot(f%g)", w.HotspotFraction)
	}
	return proc + "/" + pat
}

// WorkloadCurve runs one design point under scale.Workload across the given
// rates: the latency-throughput curve for bursty/hotspot workloads. For
// trace replay the offered load is data, not a parameter, so callers pass a
// single placeholder rate.
func WorkloadCurve(pt Point, rates []float64, scale SimScale) []NetSeries {
	return WorkloadCurveCtx(context.Background(), pt, rates, scale)
}

// WorkloadCurveCtx is WorkloadCurve with cooperative cancellation.
func WorkloadCurveCtx(ctx context.Context, pt Point, rates []float64, scale SimScale) []NetSeries {
	name := WorkloadName(scale.Workload)
	return []NetSeries{runCurveN(ctx, name, rates, scale.Workers, func(rate float64) sim.Config {
		return BuildSim(pt, rate, scale)
	})}
}

// PatternSweep runs one design point under several synthetic traffic
// patterns at a fixed rate; the paper reports that its conclusions are
// largely invariant to traffic pattern selection (§3.2). Patterns are
// swept with up to scale.Workers simulations in flight; each pattern is an
// independent, deterministic simulation, so results do not depend on the
// worker count.
func PatternSweep(pt Point, rate float64, scale SimScale, patterns []string) ([]NetSeries, error) {
	return PatternSweepCtx(context.Background(), pt, rate, scale, patterns)
}

// PatternSweepCtx is PatternSweep with cooperative cancellation: cancelling
// ctx aborts in-flight simulations and skips unstarted patterns.
func PatternSweepCtx(ctx context.Context, pt Point, rate float64, scale SimScale, patterns []string) ([]NetSeries, error) {
	resolved := make([]traffic.Pattern, len(patterns))
	for i, name := range patterns {
		p, err := traffic.NewPattern(name, 64)
		if err != nil {
			return nil, err
		}
		resolved[i] = p
	}
	out := make([]NetSeries, len(patterns))
	workers := scale.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(patterns) {
		workers = len(patterns)
	}
	// Placement: run-level parallelism comes first (independent simulations
	// scale perfectly), but a sweep shorter than the worker budget leaves
	// cores idle — hand those to intra-run sharding. Explicit Shards wins.
	if scale.Shards == 0 && workers < scale.Workers {
		if perRun := scale.Workers / workers; perRun > 1 {
			scale.Shards = perRun
		}
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range patterns {
		i := i
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = runCurve(ctx, patterns[i], []float64{rate}, func(r float64) sim.Config {
				cfg := BuildSim(pt, r, scale)
				cfg.Pattern = resolved[i]
				return cfg
			})
		}()
	}
	wg.Wait()
	return out, nil
}
