// Package prof wires the standard pprof profilers into the command-line
// tools, so performance work can measure the real workloads (EXPERIMENTS.md
// drivers) instead of guessing from micro-benchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles names the output files for each supported profile; empty paths
// disable that profile.
type Profiles struct {
	// CPU receives a CPU profile covering Start..stop.
	CPU string
	// Mem receives a heap profile written at stop (after a GC, so it
	// reflects live data).
	Mem string
	// Block receives a goroutine-blocking profile (channel waits, barrier
	// stalls) sampled at full rate between Start and stop.
	Block string
	// Mutex receives a mutex-contention profile sampled at full rate
	// between Start and stop.
	Mutex string
}

// Start begins CPU profiling when cpuPath is non-empty. The returned stop
// function finishes the CPU profile and, when memPath is non-empty, writes a
// heap profile. Callers must invoke stop before exiting; both paths may be
// empty, making Start a no-op. See StartAll for the full profile set.
func Start(cpuPath, memPath string) (stop func()) {
	return StartAll(Profiles{CPU: cpuPath, Mem: memPath})
}

// StartAll enables every profile with a non-empty path and returns the stop
// function that writes them out. Block and mutex profiling sample at full
// rate while active (runtime.SetBlockProfileRate(1) /
// SetMutexProfileFraction(1)) — measurable overhead, acceptable for the
// diagnostic runs these flags exist for — and are switched off again by
// stop.
func StartAll(p Profiles) (stop func()) {
	var cpuFile *os.File
	if p.CPU != "" {
		f, err := os.Create(p.CPU)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		if p.Block != "" {
			writeLookup("block", p.Block)
			runtime.SetBlockProfileRate(0)
		}
		if p.Mutex != "" {
			writeLookup("mutex", p.Mutex)
			runtime.SetMutexProfileFraction(0)
		}
	}
}

// writeLookup dumps one of the runtime's named profiles to path.
func writeLookup(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prof:", err)
	os.Exit(1)
}
