// Package prof wires the standard pprof profilers into the command-line
// tools, so performance work can measure the real workloads (EXPERIMENTS.md
// drivers) instead of guessing from micro-benchmarks.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty. The returned stop
// function finishes the CPU profile and, when memPath is non-empty, writes a
// heap profile (after a GC, so it reflects live data). Callers must invoke
// stop before exiting; both paths may be empty, making Start a no-op.
func Start(cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prof:", err)
	os.Exit(1)
}
