// Package xrand provides a small, fast, deterministic pseudo-random number
// generator for simulations and workload generation.
//
// The generator is xoshiro256**, seeded through splitmix64 so that any
// 64-bit seed (including 0) yields a well-mixed state. Streams derived with
// Split are independent for all practical simulation purposes, which lets
// each network terminal or experiment own a private source while keeping
// whole-run determinism from a single root seed.
package xrand

import (
	"math"
	"math/bits"
)

// Source is a deterministic PRNG. It is not safe for concurrent use; derive
// per-goroutine sources with Split.
type Source struct {
	s [4]uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a source seeded from seed.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	return &src
}

// Split derives an independent child source from s, keyed by id. The parent
// state is not advanced, so Split(i) is a pure function of (seed, id).
func (s *Source) Split(id uint64) *Source {
	x := s.s[0] ^ (s.s[1] << 1) ^ (s.s[2] << 2) ^ (s.s[3] << 3) ^ (id * 0x9e3779b97f4a7c15)
	var c Source
	for i := range c.s {
		c.s[i] = splitmix64(&x)
	}
	return &c
}

// State returns a copy of the generator's current state. Together with
// Restore it lets a caller speculatively consume draws and later rewind —
// the event-leaping simulator presamples a terminal's next arrival and must
// replay the skipped per-cycle draws if the terminal wakes early.
func (s *Source) State() Source { return *s }

// Restore rewinds the generator to a state previously captured with State.
func (s *Source) Restore(st Source) { *s = st }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	r := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return r
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	hi, lo := bits.Mul64(s.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from the geometric distribution with success
// probability p: the number of Bernoulli(p) trials up to and including the
// first success. Returns math.MaxInt for degenerate p <= 0.
func (s *Source) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return math.MaxInt
	}
	// Inversion: ceil(ln(U) / ln(1-p)) with U in (0,1].
	u := 1 - s.Float64() // (0,1]
	k := math.Ceil(math.Log(u) / math.Log1p(-p))
	if k < 1 {
		k = 1
	}
	if k > float64(math.MaxInt32) {
		return math.MaxInt32
	}
	return int(k)
}

// Perm fills p with a uniformly random permutation of [0, len(p)).
func (s *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
