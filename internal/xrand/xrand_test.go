package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= s.Uint64()
	}
	if acc == 0 {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1again := root.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split must be a pure function of (state, id)")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("distinct split ids should give distinct streams")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced parent state")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, iters = 8, 80000
	counts := make([]int, n)
	for i := 0; i < iters; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(iters) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates >5%% from %f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f out of [0,1)", f)
		}
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(5)
	if s.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !s.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
	if s.Bool(-0.5) {
		t.Fatal("Bool(negative) must be false")
	}
}

func TestBoolRate(t *testing.T) {
	s := New(13)
	const iters = 100000
	hits := 0
	for i := 0; i < iters; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	rate := float64(hits) / iters
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) empirical rate %f", rate)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(17)
	const p, iters = 0.25, 50000
	sum := 0
	for i := 0; i < iters; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / iters
	if math.Abs(mean-1/p) > 0.1*(1/p) {
		t.Fatalf("Geometric(%f) mean %f, want ~%f", p, mean, 1/p)
	}
}

func TestGeometricEdges(t *testing.T) {
	s := New(1)
	if got := s.Geometric(1); got != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", got)
	}
	if got := s.Geometric(1.5); got != 1 {
		t.Fatalf("Geometric(>1) = %d, want 1", got)
	}
	if got := s.Geometric(0); got != math.MaxInt {
		t.Fatalf("Geometric(0) = %d, want MaxInt", got)
	}
	if got := s.Geometric(-1); got != math.MaxInt {
		t.Fatalf("Geometric(<0) = %d, want MaxInt", got)
	}
	for i := 0; i < 1000; i++ {
		if s.Geometric(0.9) < 1 {
			t.Fatal("Geometric must be >= 1")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	p := make([]int, 50)
	s.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(29)
	const n, iters = 5, 50000
	counts := make([]int, n)
	p := make([]int, n)
	for i := 0; i < iters; i++ {
		s.Perm(p)
		counts[p[0]]++
	}
	want := float64(iters) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("first-element bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= s.Uint64()
	}
	_ = acc
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc ^= s.Intn(160)
	}
	_ = acc
}

// TestStateRestore pins the rewind contract the simulator's presampling
// path depends on: capturing the state, consuming arbitrary draws, and
// restoring must replay the identical stream.
func TestStateRestore(t *testing.T) {
	s := New(99)
	s.Uint64() // advance off the seed state
	snap := s.State()
	var first [32]uint64
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Intn(17)
	s.Bool(0.3)
	s.Restore(snap)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Restore = %d, want %d", i, got, first[i])
		}
	}
	if snap != snap.State() {
		t.Error("State of a copy must equal the copy")
	}
}
